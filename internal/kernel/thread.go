package kernel

import (
	"fmt"

	"repro/internal/sim"
)

// ThreadState is the lifecycle state of a simulated thread.
type ThreadState int

// Thread states.
const (
	ThreadRunnable ThreadState = iota // in a runqueue, waiting for a core
	ThreadRunning                     // current on some core
	ThreadBlocked                     // waiting (futex, sleep, ...)
	ThreadExited
)

func (s ThreadState) String() string {
	switch s {
	case ThreadRunnable:
		return "runnable"
	case ThreadRunning:
		return "running"
	case ThreadBlocked:
		return "blocked"
	case ThreadExited:
		return "exited"
	}
	return "unknown"
}

// niceToWeight is the Linux sched_prio_to_weight table for nice -20..19.
var niceToWeight = [40]int64{
	88761, 71755, 56483, 46273, 36291,
	29154, 23254, 18705, 14949, 11916,
	9548, 7620, 6100, 4904, 3906,
	3121, 2501, 1991, 1586, 1277,
	1024, 820, 655, 526, 423,
	335, 272, 215, 172, 137,
	110, 87, 70, 56, 45,
	36, 29, 23, 18, 15,
}

func weightOf(nice int) int64 {
	if nice < -20 {
		nice = -20
	}
	if nice > 19 {
		nice = 19
	}
	return niceToWeight[nice+20]
}

// segment is an in-flight compute request.
type segment struct {
	remaining  float64 // work ns left at speed 1
	penalty    float64 // dispatch/IRQ overhead ns to burn before work
	bw         float64 // bytes/ns of memory traffic while running
	footprint  int64   // working-set bytes (cache model)
	speed      float64 // current effective speed (bandwidth scaling)
	lastUpdate sim.Time
	running    bool
	endEv      sim.Event
}

func (s *segment) total() float64 { return s.penalty + s.remaining }

// advance folds elapsed wall time into the segment's progress.
func (s *segment) advance(now sim.Time) {
	if !s.running {
		return
	}
	done := float64(now.Sub(s.lastUpdate)) * s.speed
	s.lastUpdate = now
	if done <= s.penalty {
		s.penalty -= done
		return
	}
	done -= s.penalty
	s.penalty = 0
	s.remaining -= done
	if s.remaining < 0 {
		s.remaining = 0
	}
}

// Thread is a simulated kernel thread.
type Thread struct {
	TID  Tid
	Name string
	Proc *Process

	kern *Kernel
	proc *sim.Proc

	state    ThreadState
	class    Class
	rtPrio   int
	nice     int
	weight   int64
	vruntime int64 // weighted virtual runtime, ns at weight 1024

	affinity Mask
	curCore  int // core we are current on, -1 otherwise
	lastCore int // last core we ran on, -1 if never

	seg *segment
	// segBuf is the reusable storage behind seg: a thread runs at most
	// one compute segment at a time and nothing retains *segment past
	// completion, so Compute recycles this buffer instead of allocating.
	segBuf         segment
	pendingPenalty sim.Duration // dispatch cost charged to the next segment
	needResched    bool         // self-preempt at the next scheduling point

	dispatchedAt sim.Time
	rqIdx        int    // index in fair runqueue heap, -1 when absent
	rqSeq        uint64 // FIFO tie-break within equal vruntime
	queuedOn     int    // core whose runqueue holds us while Runnable
	sleeperWake  bool   // wake came from a sleep (sleeper fairness bonus)

	sleepEv sim.Event // pending sleep/timeout wakeup
	yieldEv sim.Event // deferred lazy-yield switch (next tick)
	waitsOn *Futex
	// timeoutFutex and futexTimedOut carry a futex wait's timeout state
	// so the timer needs no per-wait closure: timeoutFutex remembers
	// which futex the pending sleepEv was armed for, futexTimedOut is
	// how the fired timer reports WaitTimedOut back to Wait.
	timeoutFutex  *Futex
	futexTimedOut bool

	// CPUTime accumulates wall time spent current on a core.
	CPUTime sim.Duration
	// TLS is the dominant per-thread upper-layer binding (the glibc
	// pthread state), promoted out of Local to a typed slot because it
	// is read on every simulated libc call. Rarer per-thread state goes
	// in Local.
	TLS any
	// Local carries additional upper-layer per-thread state (nOS-V
	// worker, runtime TLS), keyed by subsystem name.
	Local map[string]any
}

func (t *Thread) String() string { return fmt.Sprintf("tid %d (%s)", t.TID, t.Name) }

// State returns the thread state.
func (t *Thread) State() ThreadState { return t.state }

// Kernel returns the owning kernel.
func (t *Thread) Kernel() *Kernel { return t.kern }

// Nice returns the thread's nice value.
func (t *Thread) Nice() int { return t.nice }

// LastCore returns the core the thread last ran on (-1 if never ran).
func (t *Thread) LastCore() int { return t.lastCore }

// CurrentCore returns the core the thread is current on, or -1.
func (t *Thread) CurrentCore() int {
	if t.state == ThreadRunning {
		return t.curCore
	}
	return -1
}

// Affinity returns a copy of the thread's affinity mask.
func (t *Thread) Affinity() Mask { return t.affinity.Clone() }

// Class returns the thread's scheduling class.
func (t *Thread) Class() Class { return t.class }

// ClassName returns the name of the thread's scheduling class.
func (t *Thread) ClassName() string { return t.class.Name() }

// Weight returns the thread's fair-class weight (derived from nice).
func (t *Thread) Weight() int64 { return t.weight }

// RTPrio returns the thread's real-time priority (RR/FIFO; higher wins).
func (t *Thread) RTPrio() int { return t.rtPrio }

// SpawnThread creates a runnable thread in process p executing fn. The
// thread inherits the process default affinity and nice value. It may be
// called from event context or from another thread's code.
func (k *Kernel) SpawnThread(p *Process, name string, fn func(t *Thread)) *Thread {
	k.nextTid++
	t := &Thread{
		TID:      k.nextTid,
		Name:     name,
		Proc:     p,
		kern:     k,
		state:    ThreadBlocked, // becomes runnable via wake below
		class:    k.defaultClass,
		nice:     p.DefaultNice,
		weight:   weightOf(p.DefaultNice),
		affinity: p.DefaultAffinity.Clone(),
		curCore:  -1,
		lastCore: -1,
		rqIdx:    -1,
		Local:    make(map[string]any),
	}
	k.threads[t.TID] = t
	p.threads = append(p.threads, t)
	k.Stats.ThreadsCreated++
	t.proc = k.Eng.Spawn(name, func(pr *sim.Proc) {
		defer k.exitThread(t)
		fn(t)
	})
	t.proc.Data = t
	k.wake(t, false)
	return t
}

// assertCurrent panics unless t's own code is executing.
func (t *Thread) assertCurrent() {
	if t.kern.Eng.Current() != t.proc {
		panic(fmt.Sprintf("kernel: %v API called from outside its own code", t))
	}
}

// ComputeOpts qualifies a compute segment.
type ComputeOpts struct {
	// BW is the memory traffic the segment generates, in bytes per ns
	// (GB/s). The per-socket bandwidth model slows the segment down
	// proportionally when the socket saturates.
	BW float64
	// Footprint is the working set in bytes; it sizes cache-refill
	// penalties after migrations and corunner pollution.
	Footprint int64
}

// Compute consumes d of CPU work at full speed. The call returns when the
// work completes; the thread may be preempted and migrated while inside.
func (t *Thread) Compute(d sim.Duration) { t.ComputeOpts(d, ComputeOpts{}) }

// ComputeOpts is Compute with a bandwidth demand and cache footprint.
func (t *Thread) ComputeOpts(d sim.Duration, o ComputeOpts) {
	t.assertCurrent()
	if d <= 0 && t.pendingPenalty <= 0 {
		return
	}
	if d < 0 {
		d = 0
	}
	seg := &t.segBuf
	*seg = segment{
		remaining: float64(d),
		bw:        o.BW,
		footprint: o.Footprint,
		speed:     1,
	}
	if t.pendingPenalty > 0 {
		seg.penalty = float64(t.pendingPenalty)
		t.pendingPenalty = 0
	}
	t.seg = seg
	k := t.kern
	if t.state == ThreadRunning {
		c := k.cores[t.curCore]
		// Voluntary scheduling point: honour an expired slice or a
		// pending resched request before burning more CPU.
		if t.needResched && c.hasCompetitor(t) {
			c.preemptCurrent("resched")
		} else {
			c.startSegment(t)
		}
	}
	// Otherwise we were preempted at a call boundary; the segment will
	// start when a core dispatches us.
	t.proc.Park()
}

// Yield models sched_yield: the thread stays runnable but is pushed behind
// its competitors.
func (t *Thread) Yield() {
	t.assertCurrent()
	k := t.kern
	k.Stats.Yields++
	t.chargeSyscall()
	if t.state != ThreadRunning {
		// Preempted at the boundary; we are already off-CPU, which
		// is as yielded as it gets.
		t.proc.Park()
		return
	}
	c := k.cores[t.curCore]
	if !c.hasCompetitor(t) {
		return // nothing else to run; yield is a no-op
	}
	if k.Params.YieldImmediate {
		// EEVDF-style ablation: switch right away, vruntime untouched.
		c.preemptCurrentVoluntary("yield")
		t.proc.Park()
		return
	}
	// The paper's Linux 5.14 behaviour (§5.3): the yield does not take
	// effect immediately — the thread keeps burning its core until the
	// next scheduler tick, when the kernel finally switches. Repeated
	// yields within a tick collapse into one deferred switch. This is
	// the residual busy-wait cost the Baseline pays even with the
	// sched_yield barrier patch.
	if t.yieldEv.Active() {
		return
	}
	t.yieldEv = k.Eng.AfterFunc(k.Params.TickInterval, lazyYieldSwitch, t)
}

// lazyYieldSwitch is the deferred-yield callback shared by every thread:
// it performs the switch a lazy sched_yield postponed to the next tick.
func lazyYieldSwitch(arg any) {
	t := arg.(*Thread)
	t.yieldEv = sim.Event{}
	if t.state != ThreadRunning || t.curCore < 0 {
		return
	}
	c := t.kern.cores[t.curCore]
	if c.curr != t || !c.hasCompetitor(t) {
		return
	}
	if t.seg == nil || !t.seg.running {
		t.needResched = true
		return
	}
	c.stopCurrent()
	// Skip-buddy semantics: the pick following a yield skips the
	// yielder even though its vruntime is lowest, so a lone
	// busy-waiter cannot monopolise consecutive picks. Fairness
	// still brings it back afterwards (CFS does not reduce a
	// yielder's entitlement).
	next := c.popNext()
	c.enqueue(t)
	if next != nil {
		c.dispatch(next)
	} else {
		c.scheduleNext()
	}
}

// Nanosleep blocks the thread for d of virtual time.
func (t *Thread) Nanosleep(d sim.Duration) {
	t.assertCurrent()
	k := t.kern
	k.Stats.Sleeps++
	t.chargeSyscall()
	if d <= 0 {
		return
	}
	k.blockCurrent(t)
	t.sleepEv = k.Eng.AfterFunc(d, sleepWake, t)
	t.proc.Park()
}

// sleepWake is the Nanosleep expiry callback shared by every thread.
func sleepWake(arg any) {
	t := arg.(*Thread)
	t.sleepEv = sim.Event{}
	t.kern.wake(t, true)
}

// SetAffinity restricts the thread to the given cores. If the thread is
// running on a core outside the new mask it is migrated at this scheduling
// point.
func (t *Thread) SetAffinity(m Mask) {
	t.affinity = m.CloneInto(t.affinity)
	k := t.kern
	switch t.state {
	case ThreadRunning:
		if !m.Has(t.curCore) {
			if k.Eng.Current() == t.proc {
				c := k.cores[t.curCore]
				c.preemptCurrentVoluntary("affinity")
				t.proc.Park()
			} else {
				k.cores[t.curCore].preemptCurrent("affinity")
			}
		}
	case ThreadRunnable:
		c := k.cores[t.queuedOn]
		if !m.Has(c.id) {
			c.removeQueued(t)
			k.wakePlace(t)
		}
	}
}

// SetNice adjusts the thread's nice value (fair-class weight).
func (t *Thread) SetNice(nice int) {
	t.nice = nice
	t.weight = weightOf(nice)
}

// SetRR moves the thread to the SCHED_RR class at the given priority
// (higher wins). In the real system this needs privileges; the simulation
// exposes it to model the comparison in §3 of the paper.
func (t *Thread) SetRR(prio int) {
	t.rtPrio = prio
	t.mustSetClass("rr")
}

// SetFIFO moves the thread to the SCHED_FIFO class at the given priority
// (higher wins).
func (t *Thread) SetFIFO(prio int) {
	t.rtPrio = prio
	t.mustSetClass("fifo")
}

// SetFair returns the thread to the fair class.
func (t *Thread) SetFair() { t.mustSetClass("fair") }

// SetBatch moves the thread to the SCHED_BATCH class.
func (t *Thread) SetBatch() { t.mustSetClass("batch") }

// SetClass moves the thread to the named scheduling class. A queued
// thread is moved between its old and new class's runqueues; a running
// thread keeps its core until its next scheduling point.
func (t *Thread) SetClass(name string) error {
	cl, ok := t.kern.classByName[name]
	if !ok {
		return fmt.Errorf("kernel: unknown scheduling class %q (have %v)", name, ClassNames())
	}
	t.setClass(cl)
	return nil
}

func (t *Thread) mustSetClass(name string) {
	if err := t.SetClass(name); err != nil {
		panic(err)
	}
}

func (t *Thread) setClass(cl Class) {
	if t.class == cl {
		return
	}
	if t.state == ThreadRunnable && t.queuedOn >= 0 {
		// Requeue under the new class so dequeue/pick consult the
		// right runqueue.
		c := t.kern.cores[t.queuedOn]
		c.removeQueued(t)
		t.class = cl
		c.enqueue(t)
		return
	}
	t.class = cl
}

// Kill forcibly terminates a thread that is not currently executing (the
// exit(2) path tearing down a process's remaining threads). The thread's
// goroutine unwinds; kernel bookkeeping is released by the exit handler.
func (t *Thread) Kill() {
	if t.state == ThreadExited {
		return
	}
	t.kern.Eng.Kill(t.proc)
}

// chargeSyscall adds the kernel-entry cost to the thread's next segment.
func (t *Thread) chargeSyscall() {
	t.pendingPenalty += t.kern.HW.Costs.SyscallEntry
}

// exitThread tears the thread down; invoked as a deferred call when the
// thread function returns (or via Goexit-style unwinding from pthread_exit).
func (k *Kernel) exitThread(t *Thread) {
	if t.state == ThreadExited {
		return
	}
	k.Stats.ThreadsExited++
	switch t.state {
	case ThreadRunning:
		c := k.cores[t.curCore]
		c.undispatch(t)
		c.scheduleNext()
	case ThreadRunnable:
		k.cores[t.queuedOn].removeQueued(t)
	case ThreadBlocked:
		t.sleepEv.Cancel()
		t.sleepEv = sim.Event{}
		if t.waitsOn != nil {
			t.waitsOn.remove(t)
		}
	}
	t.yieldEv.Cancel()
	t.yieldEv = sim.Event{}
	t.state = ThreadExited
	t.seg = nil
	t.proc.Data = nil
}
