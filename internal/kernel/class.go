package kernel

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Class is a pluggable kernel scheduling class, mirroring Linux's
// sched_class vtable. Each class owns its per-core runqueue type and all
// class-specific policy: pick order (Rank), time slicing, slice-expiry and
// wake-up preemption rules, runtime accounting, and whether load balancing
// may migrate its queued threads. Core dispatch (enqueue, pick, preempt,
// steal, balance) is class-agnostic and consults only this interface.
//
// Implementations embed ClassBase, which carries the kernel binding and
// queue slot the kernel assigns at construction time. New classes register
// a constructor with RegisterClass; selection flows through
// SchedParams.DefaultClass and Thread.SetClass.
type Class interface {
	// Name is the registry key ("fair", "rr", "fifo", "batch").
	Name() string
	// Rank orders classes for picking and cross-class wake-up
	// preemption: a waking thread of a lower-ranked class preempts a
	// current thread of a higher-ranked one, and cores pick from queues
	// in ascending rank order.
	Rank() int
	// NewQueue returns an empty per-core runqueue for the class.
	NewQueue() RunQueue
	// Slice returns the time slice to grant t on core c given the
	// present queue depth; a non-positive slice means run-to-block (no
	// slice-expiry preemption, as in SCHED_FIFO).
	Slice(c *Core, t *Thread) sim.Duration
	// SliceShrinks reports whether a newly enqueued competitor
	// recomputes the current thread's slice end from the new queue
	// depth (CFS crowding) rather than leaving the granted quantum
	// intact (RR).
	SliceShrinks() bool
	// ExpirePreempts decides what an expired slice does while
	// competitors are queued: requeue the thread (true) or renew the
	// slice in place (false; RR with no equal-or-higher-priority
	// waiter).
	ExpirePreempts(c *Core, t *Thread) bool
	// WakeupPreempts decides whether freshly woken t preempts curr,
	// both of this class, on c.
	WakeupPreempts(c *Core, t, curr *Thread) bool
	// OnWake adjusts t's accounting before wake-up placement (CFS
	// sleeper placement).
	OnWake(c *Core, t *Thread)
	// OnDispatch runs as t becomes current on c.
	OnDispatch(c *Core, t *Thread)
	// Charge accounts wall time t consumed on c (vruntime for the
	// weighted-fair classes).
	Charge(c *Core, t *Thread, wall sim.Duration)
	// Stealable reports whether idle stealing and periodic balancing
	// may migrate this class's queued threads between cores.
	Stealable() bool

	bind(k *Kernel, slot int)
	slot() int
}

// RunQueue is one scheduling class's per-core queue of runnable threads.
// The class decides the ordering; core dispatch only enqueues, removes,
// and picks.
type RunQueue interface {
	// Len returns the number of queued threads.
	Len() int
	// Enqueue adds t.
	Enqueue(t *Thread)
	// Dequeue removes a specific queued thread (exit, affinity change,
	// class change), reporting whether it was present. Core dispatch
	// keeps incremental queue counters and must not decrement them on a
	// no-op removal.
	Dequeue(t *Thread) bool
	// Pick removes and returns the next thread to run, or nil.
	Pick() *Thread
	// Peek returns the next thread without removing it, or nil.
	Peek() *Thread
	// Steal removes and returns a queued thread whose affinity allows
	// core, or nil (idle stealing and periodic balancing).
	Steal(core int) *Thread
}

// ClassBase carries the kernel binding shared by every class
// implementation. Embed it (by pointer receiver semantics it must be
// embedded as a value in a type used via pointer) in a class struct.
type ClassBase struct {
	kern    *Kernel
	slotIdx int
}

func (b *ClassBase) bind(k *Kernel, slot int) { b.kern = k; b.slotIdx = slot }
func (b *ClassBase) slot() int                { return b.slotIdx }

// Kern returns the owning kernel (nil before the class is bound).
func (b *ClassBase) Kern() *Kernel { return b.kern }

// ClassCtor builds an unbound class instance; the kernel binds it to
// itself and a queue slot during construction.
type ClassCtor func() Class

type classRegistration struct {
	name string
	ctor ClassCtor
}

var classRegistry []classRegistration

// RegisterClass adds a scheduling class constructor under name. Empty or
// duplicate names panic: class wiring is an init-time programming error.
// Kernels created afterwards instantiate every registered class.
func RegisterClass(name string, ctor ClassCtor) {
	if name == "" {
		panic("kernel: scheduling class with empty name")
	}
	for _, r := range classRegistry {
		if r.name == name {
			panic("kernel: duplicate scheduling class " + name)
		}
	}
	classRegistry = append(classRegistry, classRegistration{name, ctor})
}

// ClassNames returns the registered scheduling-class names in
// registration order.
func ClassNames() []string {
	ns := make([]string, len(classRegistry))
	for i, r := range classRegistry {
		ns[i] = r.name
	}
	return ns
}

// newClasses instantiates every registered class for kernel k, ordered by
// ascending rank (stable on registration order), and binds each to its
// queue slot.
func newClasses(k *Kernel) []Class {
	cs := make([]Class, len(classRegistry))
	for i, r := range classRegistry {
		cs[i] = r.ctor()
		if cs[i].Name() != r.name {
			panic(fmt.Sprintf("kernel: class registered as %q names itself %q", r.name, cs[i].Name()))
		}
	}
	sort.SliceStable(cs, func(i, j int) bool { return cs[i].Rank() < cs[j].Rank() })
	for i, cl := range cs {
		cl.bind(k, i)
	}
	return cs
}

func init() {
	RegisterClass("fair", func() Class { return &fairClass{} })
	RegisterClass("rr", func() Class { return &rrClass{} })
	RegisterClass("fifo", func() Class { return &fifoClass{} })
	RegisterClass("batch", func() Class { return &batchClass{} })
}
